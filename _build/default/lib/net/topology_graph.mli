(** Static topology description and route computation.

    A small undirected graph over node addresses.  Routes are computed
    by breadth-first search (all links are equal cost), producing for
    each node a next-hop table that the wiring layer turns into
    [Node.add_route] entries. *)

type t
(** A topology under construction. *)

val create : unit -> t
(** An empty topology. *)

val add_node : t -> Address.t -> unit
(** Declare a node.  Idempotent. *)

val add_edge : t -> Address.t -> Address.t -> unit
(** Declare a bidirectional link between two declared nodes.
    @raise Invalid_argument if either endpoint is undeclared or the
    endpoints are equal. *)

val nodes : t -> Address.t list
(** Declared nodes, in insertion order. *)

val neighbours : t -> Address.t -> Address.t list
(** Adjacent nodes, in insertion order. *)

val next_hops : t -> src:Address.t -> (Address.t * Address.t) list
(** [(dst, hop)] pairs: to reach [dst] from [src], forward to the
    neighbour [hop].  Unreachable destinations are omitted; [src]
    itself is omitted. *)

val path : t -> src:Address.t -> dst:Address.t -> Address.t list option
(** The hop-by-hop shortest path including both endpoints, if any. *)
