open Sim_engine

type pattern =
  | Cbr of { rate : Units.bandwidth; packet_bytes : int }
  | On_off of {
      rate : Units.bandwidth;
      packet_bytes : int;
      mean_on : Simtime.span;
      mean_off : Simtime.span;
    }

type t = {
  sim : Simulator.t;
  rng : Rng.t;
  pattern : pattern;
  src : Address.t;
  dst : Address.t;
  conn : int;
  alloc_id : unit -> int;
  send : Packet.t -> unit;
  mutable running : bool;
  mutable packets : int;
  mutable bytes : int;
}

let packet_bytes_of = function
  | Cbr { packet_bytes; _ } | On_off { packet_bytes; _ } -> packet_bytes

let rate_of = function Cbr { rate; _ } | On_off { rate; _ } -> rate

(* Spacing that averages to the pattern's rate while sending. *)
let interval t =
  Units.tx_time
    ~bits:(Units.bits_of_bytes (packet_bytes_of t.pattern))
    (rate_of t.pattern)

let emit t =
  let bytes = packet_bytes_of t.pattern in
  let header = Stdlib.min 40 bytes in
  let pkt =
    Packet.create ~id:(t.alloc_id ()) ~src:t.src ~dst:t.dst
      ~kind:
        (Packet.Tcp_data
           { conn = t.conn; seq = t.bytes; length = bytes - header;
             is_retransmit = false })
      ~header_bytes:header ~created:(Simulator.now t.sim)
  in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes;
  t.send pkt

let rec tick t =
  if t.running then begin
    emit t;
    ignore (Simulator.schedule_after t.sim ~delay:(interval t) (fun () -> tick t))
  end

(* On/off: alternate sending bursts with silent gaps, both
   exponentially distributed. *)
let rec burst t =
  if t.running then begin
    match t.pattern with
    | Cbr _ -> ()
    | On_off { mean_on; mean_off; _ } ->
      let on = Rng.exponential t.rng ~mean:(Simtime.span_to_sec mean_on) in
      let off = Rng.exponential t.rng ~mean:(Simtime.span_to_sec mean_off) in
      let rec send_during remaining =
        if t.running && remaining > 0.0 then begin
          emit t;
          let gap = interval t in
          ignore
            (Simulator.schedule_after t.sim ~delay:gap (fun () ->
                 send_during (remaining -. Simtime.span_to_sec gap)))
        end
        else
          ignore
            (Simulator.schedule_after t.sim ~delay:(Simtime.span_sec off)
               (fun () -> burst t))
      in
      send_during on
  end

let start sim ~rng ~pattern ~src ~dst ~conn ~alloc_id ~send =
  (match pattern with
  | Cbr { packet_bytes; _ } | On_off { packet_bytes; _ } ->
    if packet_bytes <= 0 then
      invalid_arg "Cross_traffic.start: packet_bytes <= 0");
  let t =
    {
      sim;
      rng;
      pattern;
      src;
      dst;
      conn;
      alloc_id;
      send;
      running = true;
      packets = 0;
      bytes = 0;
    }
  in
  (match pattern with Cbr _ -> tick t | On_off _ -> burst t);
  t

let stop t = t.running <- false
let packets_sent t = t.packets
let bytes_sent t = t.bytes
