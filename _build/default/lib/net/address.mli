(** Node addresses.

    A flat address space: each node in a topology has a unique small
    integer address. *)

type t = private int
(** A node address. *)

val make : int -> t
(** [make n] is the address [n].  @raise Invalid_argument if [n < 0]. *)

val to_int : t -> int
(** The underlying integer. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["n3"]. *)
