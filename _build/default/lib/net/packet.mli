(** Network-layer packets.

    Packets are immutable records.  The [kind] carries the transport
    payload description; no byte buffers are simulated, only sizes and
    sequence metadata. *)

type kind =
  | Tcp_data of {
      conn : int;  (** connection identifier *)
      seq : int;  (** byte offset of the first payload byte *)
      length : int;  (** payload bytes *)
      is_retransmit : bool;  (** true if re-sent by the TCP source *)
    }
      (** A TCP data segment. *)
  | Tcp_ack of {
      conn : int;
      ack : int;  (** next byte expected by the receiver *)
      sack : (int * int) list;
          (** up to three selective-acknowledgement blocks
              [(start, stop)) of out-of-order data held by the
              receiver (RFC 2018); empty unless the receiver has
              buffered segments *)
    }  (** A cumulative acknowledgement. *)
  | Ebsn of { conn : int }
      (** Explicit Bad State Notification from a base station (the
          paper's new ICMP message type). *)
  | Source_quench of { conn : int }
      (** ICMP source quench (RFC 792), the paper's §4.2.2 baseline. *)

type t = private {
  id : int;  (** unique per run *)
  src : Address.t;
  dst : Address.t;
  kind : kind;
  header_bytes : int;
  payload_bytes : int;
  created : Sim_engine.Simtime.t;  (** time the packet was first transmitted *)
}

val create :
  id:int ->
  src:Address.t ->
  dst:Address.t ->
  kind:kind ->
  header_bytes:int ->
  created:Sim_engine.Simtime.t ->
  t
(** Build a packet.  [payload_bytes] is derived from [kind]
    ([length] for data, 0 otherwise).
    @raise Invalid_argument on negative sizes. *)

val size : t -> int
(** Total bytes on the wire at the network layer
    (header + payload). *)

val conn : t -> int
(** The connection identifier carried by any packet kind. *)

val is_data : t -> bool
(** [true] for [Tcp_data]. *)

val is_ack : t -> bool
(** [true] for [Tcp_ack]. *)

val retransmit : t -> id:int -> created:Sim_engine.Simtime.t -> t
(** A copy of a data packet marked as a source retransmission, with a
    fresh identifier.  @raise Invalid_argument on non-data packets. *)

val kind_label : t -> string
(** Short label for traces: ["data"], ["ack"], ["ebsn"], ["quench"]. *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable rendering. *)
