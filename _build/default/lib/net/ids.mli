(** Monotonic identifier generators.

    Each simulation run owns its generators, so identifiers are
    deterministic per run regardless of what ran before in the same
    process. *)

type t
(** A counter. *)

val create : ?first:int -> unit -> t
(** A fresh counter; the first identifier issued is [first]
    (default 0). *)

val next : t -> int
(** Issue the next identifier. *)

val issued : t -> int
(** Number of identifiers issued so far. *)
