(** Bandwidth and size units.

    All link rates are integers in bits per second; packet sizes are
    integers in bytes.  Transmission times are computed in integer
    nanoseconds via {!tx_time}. *)

type bandwidth = private int
(** A link rate in bits per second. *)

val bps : int -> bandwidth
(** [bps n] is [n] bits per second.
    @raise Invalid_argument if [n <= 0]. *)

val kbps : float -> bandwidth
(** [kbps x] is [x] kilobits per second (1 kbps = 1000 bps). *)

val mbps : float -> bandwidth
(** [mbps x] is [x] megabits per second. *)

val bandwidth_to_bps : bandwidth -> int
(** The rate in bits per second. *)

val bits_of_bytes : int -> int
(** [bits_of_bytes n] is [8 * n]. *)

val tx_time : bits:int -> bandwidth -> Sim_engine.Simtime.span
(** Time to serialise [bits] onto a link of the given rate, rounded to
    the nearest nanosecond.  @raise Invalid_argument if [bits < 0]. *)

val bytes_per_sec : bandwidth -> float
(** The rate in bytes per second. *)

val pp_bandwidth : Format.formatter -> bandwidth -> unit
(** Prints e.g. ["19.2kbps"] or ["2.0Mbps"]. *)
