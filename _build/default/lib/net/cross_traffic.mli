(** Background traffic generators.

    Injects a stream of packets into a link to congest it — the
    substrate for studying the paper's §6 open question (report [18]):
    how wired-network congestion interacts with base-station feedback.
    Two patterns: constant bit rate, and exponential on/off bursts. *)

type pattern =
  | Cbr of { rate : Units.bandwidth; packet_bytes : int }
      (** packets of [packet_bytes] evenly spaced to average [rate] *)
  | On_off of {
      rate : Units.bandwidth;  (** rate while on *)
      packet_bytes : int;
      mean_on : Sim_engine.Simtime.span;
      mean_off : Sim_engine.Simtime.span;
    }
      (** exponential on/off bursts at [rate] during on periods *)

type t
(** A running generator. *)

val start :
  Sim_engine.Simulator.t ->
  rng:Sim_engine.Rng.t ->
  pattern:pattern ->
  src:Address.t ->
  dst:Address.t ->
  conn:int ->
  alloc_id:(unit -> int) ->
  send:(Packet.t -> unit) ->
  t
(** Start generating immediately.  Packets are TCP-data-shaped with
    the given connection id (pick one no transport endpoint uses) so
    existing handlers can ignore them; [send] is typically
    [Link.send].  Runs until {!stop}. *)

val stop : t -> unit
(** Stop generating (already-queued packets still drain). *)

val packets_sent : t -> int
val bytes_sent : t -> int
