(** Network nodes.

    A node has an address, a forwarding table mapping destination
    addresses to output functions (typically [Link.send] of an
    attached link, or a link-layer agent wrapping one), and a local
    handler for packets addressed to it.

    A {e forward hook} lets transport-aware agents at intermediate
    nodes (the snoop agent, the split-connection relay) inspect or
    consume packets in transit, as the paper's related-work schemes
    require. *)

type t
(** A node. *)

val create : Sim_engine.Simulator.t -> name:string -> addr:Address.t -> t
(** A node with no routes and no local handler. *)

val addr : t -> Address.t
val name : t -> string
val sim : t -> Sim_engine.Simulator.t

val add_route : t -> dst:Address.t -> via:(Packet.t -> unit) -> unit
(** Route packets for [dst] through [via].  Replaces any previous
    route for [dst]. *)

val set_local_handler : t -> (Packet.t -> unit) -> unit
(** Handler for packets whose destination is this node. *)

val set_forward_hook : t -> (Packet.t -> bool) -> unit
(** Called on every packet this node forwards; returning [true]
    consumes the packet (it is not forwarded further). *)

val send : t -> Packet.t -> unit
(** Originate or forward a packet: looks up the route for the
    packet's destination.  @raise Failure if no route exists. *)

val receive : t -> Packet.t -> unit
(** Entry point wired to incoming links: delivers locally or
    forwards. *)

val forwarded : t -> int
(** Packets this node has forwarded. *)

val delivered_locally : t -> int
(** Packets delivered to the local handler. *)
