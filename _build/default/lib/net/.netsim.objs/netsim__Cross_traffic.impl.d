lib/net/cross_traffic.ml: Address Packet Rng Sim_engine Simtime Simulator Stdlib Units
