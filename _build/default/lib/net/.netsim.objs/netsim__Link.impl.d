lib/net/link.ml: Packet Queue_drop_tail Sim_engine Simtime Simulator Units
