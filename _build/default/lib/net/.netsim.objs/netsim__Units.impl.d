lib/net/units.ml: Float Format Sim_engine Simtime
