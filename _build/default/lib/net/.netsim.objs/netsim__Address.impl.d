lib/net/address.ml: Format Int
