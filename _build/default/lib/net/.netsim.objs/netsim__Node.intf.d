lib/net/node.mli: Address Packet Sim_engine
