lib/net/topology_graph.ml: Address Hashtbl List Queue
