lib/net/queue_drop_tail.ml: Queue Stdlib
