lib/net/packet.mli: Address Format Sim_engine
