lib/net/link.mli: Packet Sim_engine Units
