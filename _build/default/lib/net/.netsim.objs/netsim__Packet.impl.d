lib/net/packet.ml: Address Format List Printf Sim_engine Simtime String
