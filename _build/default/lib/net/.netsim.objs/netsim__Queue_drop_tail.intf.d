lib/net/queue_drop_tail.mli:
