lib/net/ids.ml:
