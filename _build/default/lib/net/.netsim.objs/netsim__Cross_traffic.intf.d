lib/net/cross_traffic.mli: Address Packet Sim_engine Units
