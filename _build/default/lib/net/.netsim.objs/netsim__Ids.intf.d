lib/net/ids.mli:
