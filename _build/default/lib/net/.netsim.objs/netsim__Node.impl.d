lib/net/node.ml: Address Format Hashtbl Packet Sim_engine Simulator
