lib/net/units.mli: Format Sim_engine
