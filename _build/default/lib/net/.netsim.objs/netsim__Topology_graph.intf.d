lib/net/topology_graph.mli: Address
