open Sim_engine

type stats = {
  tx_packets : int;
  tx_bytes : int;
  delivered : int;
  drops : int;
}

type monitor_event =
  | Enqueued of Packet.t
  | Tx_start of Packet.t
  | Delivered of Packet.t
  | Dropped of Packet.t

type t = {
  sim : Simulator.t;
  link_name : string;
  link_bandwidth : Units.bandwidth;
  link_delay : Simtime.span;
  queue : Packet.t Queue_drop_tail.t;
  mutable receiver : (Packet.t -> unit) option;
  mutable monitor : (monitor_event -> unit) option;
  mutable transmitting : bool;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable delivered : int;
}

let create sim ~name ~bandwidth ~delay ~queue_capacity =
  {
    sim;
    link_name = name;
    link_bandwidth = bandwidth;
    link_delay = delay;
    queue = Queue_drop_tail.create ~capacity:queue_capacity ();
    receiver = None;
    monitor = None;
    transmitting = false;
    tx_packets = 0;
    tx_bytes = 0;
    delivered = 0;
  }

let set_receiver t f = t.receiver <- Some f
let set_monitor t f = t.monitor <- Some f

let notify t event =
  match t.monitor with Some f -> f event | None -> ()

let deliver t pkt =
  match t.receiver with
  | None -> failwith ("Link " ^ t.link_name ^ ": no receiver installed")
  | Some f ->
    t.delivered <- t.delivered + 1;
    notify t (Delivered pkt);
    f pkt

let rec transmit t pkt =
  t.transmitting <- true;
  notify t (Tx_start pkt);
  let bits = Units.bits_of_bytes (Packet.size pkt) in
  let tx = Units.tx_time ~bits t.link_bandwidth in
  let finish () =
    t.tx_packets <- t.tx_packets + 1;
    t.tx_bytes <- t.tx_bytes + Packet.size pkt;
    ignore
      (Simulator.schedule_after t.sim ~delay:t.link_delay (fun () ->
           deliver t pkt));
    match Queue_drop_tail.dequeue t.queue with
    | Some next -> transmit t next
    | None -> t.transmitting <- false
  in
  ignore (Simulator.schedule_after t.sim ~delay:tx finish)

let send t pkt =
  (match t.receiver with
  | None -> failwith ("Link " ^ t.link_name ^ ": no receiver installed")
  | Some _ -> ());
  if t.transmitting then begin
    if Queue_drop_tail.enqueue t.queue pkt then notify t (Enqueued pkt)
    else notify t (Dropped pkt)
  end
  else transmit t pkt

let queue_length t = Queue_drop_tail.length t.queue
let busy t = t.transmitting

let stats t =
  {
    tx_packets = t.tx_packets;
    tx_bytes = t.tx_bytes;
    delivered = t.delivered;
    drops = Queue_drop_tail.drops t.queue;
  }

let name t = t.link_name
let bandwidth t = t.link_bandwidth
let delay t = t.link_delay
