open Sim_engine

type t = {
  simulator : Simulator.t;
  node_name : string;
  node_addr : Address.t;
  routes : (int, Packet.t -> unit) Hashtbl.t;
  mutable local_handler : (Packet.t -> unit) option;
  mutable forward_hook : (Packet.t -> bool) option;
  mutable forwarded : int;
  mutable delivered : int;
}

let create simulator ~name ~addr =
  {
    simulator;
    node_name = name;
    node_addr = addr;
    routes = Hashtbl.create 8;
    local_handler = None;
    forward_hook = None;
    forwarded = 0;
    delivered = 0;
  }

let addr t = t.node_addr
let name t = t.node_name
let sim t = t.simulator

let add_route t ~dst ~via = Hashtbl.replace t.routes (Address.to_int dst) via
let set_local_handler t f = t.local_handler <- Some f
let set_forward_hook t f = t.forward_hook <- Some f

let send t pkt =
  match Hashtbl.find_opt t.routes (Address.to_int pkt.Packet.dst) with
  | None ->
    failwith
      (Format.asprintf "Node %s: no route to %a" t.node_name Address.pp
         pkt.Packet.dst)
  | Some via -> via pkt

let receive t pkt =
  if Address.equal pkt.Packet.dst t.node_addr then begin
    t.delivered <- t.delivered + 1;
    match t.local_handler with
    | None ->
      failwith ("Node " ^ t.node_name ^ ": no local handler installed")
    | Some handler -> handler pkt
  end
  else begin
    let consumed =
      match t.forward_hook with None -> false | Some hook -> hook pkt
    in
    if not consumed then begin
      t.forwarded <- t.forwarded + 1;
      send t pkt
    end
  end

let forwarded t = t.forwarded
let delivered_locally t = t.delivered
