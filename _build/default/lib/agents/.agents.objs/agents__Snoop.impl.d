lib/agents/snoop.ml: Address Hashtbl Netsim Packet Sim_engine Simtime Simulator Stdlib
