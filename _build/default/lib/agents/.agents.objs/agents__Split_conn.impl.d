lib/agents/split_conn.ml: Address Netsim Packet Tahoe_sender Tcp_sink Tcp_tahoe
