lib/agents/snoop.mli: Netsim Sim_engine
