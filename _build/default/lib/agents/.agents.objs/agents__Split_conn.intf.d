lib/agents/split_conn.mli: Netsim Sim_engine Tcp_tahoe
