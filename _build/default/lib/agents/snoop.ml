open Sim_engine
open Netsim

type config = {
  local_rto_initial : Simtime.span;
  local_rto_min : Simtime.span;
  max_local_retransmits : int;
}

let default_config =
  {
    local_rto_initial = Simtime.span_ms 500;
    local_rto_min = Simtime.span_ms 100;
    max_local_retransmits = 10;
  }

type stats = {
  cached : int;
  local_retransmits : int;
  dupacks_suppressed : int;
  local_timeouts : int;
  cache_misses : int;
}

type cached_packet = {
  pkt : Packet.t;
  mutable sent_at : Simtime.t;
  mutable local_retx : int;
}

type conn_state = {
  cache : (int, cached_packet) Hashtbl.t;  (* keyed by first seq byte *)
  mutable last_ack : int;
  mutable dup_count : int;
  mutable srtt : float option;  (* seconds, local BS<->MH round trip *)
  mutable rto_scale : float;  (* exponential backoff of the local timer *)
  mutable timer : Simulator.event option;
}

type t = {
  sim : Simulator.t;
  cfg : config;
  mobile : Address.t;
  send_downlink : Packet.t -> unit;
  conns : (int, conn_state) Hashtbl.t;
  mutable cached_total : int;
  mutable retx_total : int;
  mutable suppressed_total : int;
  mutable timeout_total : int;
  mutable miss_total : int;
}

let create sim ~config ~mobile ~send_downlink =
  {
    sim;
    cfg = config;
    mobile;
    send_downlink;
    conns = Hashtbl.create 4;
    cached_total = 0;
    retx_total = 0;
    suppressed_total = 0;
    timeout_total = 0;
    miss_total = 0;
  }

let conn_state t conn =
  match Hashtbl.find_opt t.conns conn with
  | Some s -> s
  | None ->
    let s =
      {
        cache = Hashtbl.create 32;
        last_ack = 0;
        dup_count = 0;
        srtt = None;
        rto_scale = 1.0;
        timer = None;
      }
    in
    Hashtbl.replace t.conns conn s;
    s

let local_rto t state =
  let base =
    match state.srtt with
    | None -> Simtime.span_to_sec t.cfg.local_rto_initial
    | Some srtt ->
      Stdlib.max (2.0 *. srtt) (Simtime.span_to_sec t.cfg.local_rto_min)
  in
  Simtime.span_sec (base *. state.rto_scale)

let cancel_timer t state =
  match state.timer with
  | None -> ()
  | Some ev ->
    Simulator.cancel t.sim ev;
    state.timer <- None

let retransmit t _state entry =
  entry.local_retx <- entry.local_retx + 1;
  entry.sent_at <- Simulator.now t.sim;
  t.retx_total <- t.retx_total + 1;
  t.send_downlink entry.pkt

let rec arm_timer t state =
  cancel_timer t state;
  if Hashtbl.length state.cache > 0 then
    state.timer <-
      Some
        (Simulator.schedule_after t.sim ~delay:(local_rto t state) (fun () ->
             state.timer <- None;
             on_local_timeout t state))

and on_local_timeout t state =
  t.timeout_total <- t.timeout_total + 1;
  (match Hashtbl.find_opt state.cache state.last_ack with
  | Some entry when entry.local_retx < t.cfg.max_local_retransmits ->
    retransmit t state entry;
    state.rto_scale <- Stdlib.min 64.0 (state.rto_scale *. 2.0)
  | Some _ | None -> ());
  arm_timer t state

let on_data t conn pkt seq =
  let state = conn_state t conn in
  (match Hashtbl.find_opt state.cache seq with
  | Some entry -> entry.sent_at <- Simulator.now t.sim
  | None ->
    if seq >= state.last_ack then begin
      Hashtbl.replace state.cache seq
        { pkt; sent_at = Simulator.now t.sim; local_retx = 0 };
      t.cached_total <- t.cached_total + 1
    end);
  if (match state.timer with None -> true | Some _ -> false) then
    arm_timer t state

let sample_rtt state entry now =
  if entry.local_retx = 0 then begin
    let rtt = Simtime.span_to_sec (Simtime.diff now entry.sent_at) in
    state.srtt <-
      Some
        (match state.srtt with
        | None -> rtt
        | Some srtt -> srtt +. ((rtt -. srtt) /. 8.0))
  end

let on_ack t conn ack =
  let state = conn_state t conn in
  if ack > state.last_ack then begin
    (* New ack: clean everything it covers, take an RTT sample from
       the newest covered packet that was never locally resent. *)
    let now = Simulator.now t.sim in
    Hashtbl.iter
      (fun seq entry ->
        if seq < ack then sample_rtt state entry now)
      state.cache;
    Hashtbl.filter_map_inplace
      (fun seq entry -> if seq < ack then None else Some entry)
      state.cache;
    state.last_ack <- ack;
    state.dup_count <- 0;
    state.rto_scale <- 1.0;
    arm_timer t state;
    false
  end
  else if ack = state.last_ack then begin
    state.dup_count <- state.dup_count + 1;
    match Hashtbl.find_opt state.cache ack with
    | Some entry ->
      (* The missing packet is ours to fix: retransmit locally on the
         first duplicate, swallow this and subsequent duplicates. *)
      if
        state.dup_count = 1
        && entry.local_retx < t.cfg.max_local_retransmits
      then begin
        retransmit t state entry;
        arm_timer t state
      end;
      t.suppressed_total <- t.suppressed_total + 1;
      true
    | None ->
      t.miss_total <- t.miss_total + 1;
      false
  end
  else false

let on_forward t pkt =
  match pkt.Packet.kind with
  | Packet.Tcp_data { conn; seq; _ }
    when Address.equal pkt.Packet.dst t.mobile ->
    on_data t conn pkt seq;
    false
  | Packet.Tcp_ack { conn; ack; _ }
    when Address.equal pkt.Packet.src t.mobile ->
    on_ack t conn ack
  | Packet.Tcp_data _ | Packet.Tcp_ack _ | Packet.Ebsn _
  | Packet.Source_quench _ ->
    false

let cache_size t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.cache) t.conns 0

let stats t =
  {
    cached = t.cached_total;
    local_retransmits = t.retx_total;
    dupacks_suppressed = t.suppressed_total;
    local_timeouts = t.timeout_total;
    cache_misses = t.miss_total;
  }
