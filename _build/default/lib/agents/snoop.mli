(** Snoop agent (Balakrishnan et al. [11]) at the base station.

    A transport-aware cache of TCP data packets headed for the mobile
    host.  Losses are detected from duplicate acknowledgements flowing
    back and from a local timer; the agent retransmits locally from
    its cache and suppresses the duplicate acks so the source never
    notices.  The paper's §2 comparison point: unlike EBSN it keeps
    per-connection state at the base station, and the source can still
    time out while the agent is recovering. *)

type config = {
  local_rto_initial : Sim_engine.Simtime.span;  (** before any RTT sample *)
  local_rto_min : Sim_engine.Simtime.span;  (** floor on the local timer *)
  max_local_retransmits : int;  (** per cached packet *)
}

val default_config : config
(** 500 ms initial, 100 ms floor, 10 local retransmissions. *)

type stats = {
  cached : int;  (** data packets inserted into the cache *)
  local_retransmits : int;
  dupacks_suppressed : int;
  local_timeouts : int;
  cache_misses : int;  (** dupacks for packets not in the cache *)
}

type t
(** A snoop agent for one wireless hop. *)

val create :
  Sim_engine.Simulator.t ->
  config:config ->
  mobile:Netsim.Address.t ->
  send_downlink:(Netsim.Packet.t -> unit) ->
  t
(** An agent watching traffic to/from [mobile], re-injecting cached
    packets through [send_downlink]. *)

val on_forward : t -> Netsim.Packet.t -> bool
(** Wire as the base-station node's forward hook.  Returns [true]
    when the packet (a suppressed duplicate ack) must not be
    forwarded. *)

val cache_size : t -> int
(** Packets currently cached (per all connections). *)

val stats : t -> stats
