type t = {
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable wire_bytes_sent : int;
  mutable packets_retransmitted : int;
  mutable bytes_retransmitted : int;
  mutable acks_received : int;
  mutable dupacks_received : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable rtt_samples : int;
  mutable ebsns_received : int;
  mutable quenches_received : int;
}

let create () =
  {
    packets_sent = 0;
    bytes_sent = 0;
    wire_bytes_sent = 0;
    packets_retransmitted = 0;
    bytes_retransmitted = 0;
    acks_received = 0;
    dupacks_received = 0;
    timeouts = 0;
    fast_retransmits = 0;
    rtt_samples = 0;
    ebsns_received = 0;
    quenches_received = 0;
  }

let goodput t ~useful_bytes =
  if t.bytes_sent = 0 then 1.0
  else float_of_int useful_bytes /. float_of_int t.bytes_sent

let pp ppf t =
  Format.fprintf ppf
    "@[<v>packets sent: %d (%d retx)@,bytes sent: %d (%d retx)@,acks: %d (%d \
     dup)@,timeouts: %d, fast retransmits: %d@,rtt samples: %d, ebsn: %d, \
     quench: %d@]"
    t.packets_sent t.packets_retransmitted t.bytes_sent t.bytes_retransmitted
    t.acks_received t.dupacks_received t.timeouts t.fast_retransmits
    t.rtt_samples t.ebsns_received t.quenches_received
