(** Retransmission-timeout estimation.

    Jacobson's smoothed RTT and variance estimator with Karn's rule
    (the caller must not feed samples from retransmitted segments) and
    exponential backoff on successive timeouts, all at the coarse
    clock granularity of the paper's §4.2.1: round-trip times are
    measured in whole ticks. *)

type t
(** Estimator state for one connection. *)

val create :
  initial_ticks:int -> min_ticks:int -> max_ticks:int -> max_backoff:int -> t
(** A fresh estimator whose first timeout is [initial_ticks]. *)

val sample : t -> rtt_ticks:int -> unit
(** Feed a round-trip measurement (Jacobson: gain 1/8 on the mean,
    1/4 on the deviation).  Per Karn's algorithm, call only for
    segments that were not retransmitted. *)

val backoff : t -> unit
(** Double the timeout multiplier (up to the cap) after a timeout. *)

val reset_backoff : t -> unit
(** Clear the multiplier — on an acknowledgement of new data. *)

val current_ticks : t -> int
(** The retransmission timeout, in ticks: [(srtt + 4·rttvar) ×
    backoff], clamped to the configured bounds. *)

val srtt_ticks : t -> float
(** Smoothed RTT estimate (ticks); 0 before the first sample. *)

val rttvar_ticks : t -> float
(** Smoothed deviation estimate (ticks). *)

val backoff_multiplier : t -> int
(** Current backoff multiplier (1 when not backed off). *)

val samples : t -> int
(** Number of measurements fed so far. *)
