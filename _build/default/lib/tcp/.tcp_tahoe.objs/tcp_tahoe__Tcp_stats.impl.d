lib/tcp/tcp_stats.ml: Format
