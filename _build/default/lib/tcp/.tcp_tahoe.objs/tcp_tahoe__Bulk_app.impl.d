lib/tcp/bulk_app.ml: Format Sim_engine Simtime Tahoe_sender Tcp_config Tcp_sink Tcp_stats
