lib/tcp/tcp_sink.mli: Netsim Sim_engine Tcp_config
