lib/tcp/rto.ml: Float Stdlib
