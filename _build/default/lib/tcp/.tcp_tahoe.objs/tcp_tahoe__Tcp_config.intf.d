lib/tcp/tcp_config.mli: Sim_engine
