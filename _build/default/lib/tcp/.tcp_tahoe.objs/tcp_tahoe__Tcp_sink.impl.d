lib/tcp/tcp_sink.ml: Address List Netsim Packet Sim_engine Simtime Simulator Stdlib Tcp_config
