lib/tcp/tahoe_sender.ml: Address Float List Netsim Packet Rto Sim_engine Simtime Simulator Stdlib Tcp_config Tcp_stats
