lib/tcp/tcp_stats.mli: Format
