lib/tcp/rto.mli:
