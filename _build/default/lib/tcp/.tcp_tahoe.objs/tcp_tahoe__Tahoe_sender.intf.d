lib/tcp/tahoe_sender.mli: Netsim Rto Sim_engine Tcp_config Tcp_stats
