lib/tcp/tcp_config.ml: Float Sim_engine Simtime
