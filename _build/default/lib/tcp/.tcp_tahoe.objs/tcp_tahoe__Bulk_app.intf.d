lib/tcp/bulk_app.mli: Format Sim_engine Tahoe_sender Tcp_config Tcp_sink Tcp_stats
