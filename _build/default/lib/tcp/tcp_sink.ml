open Sim_engine
open Netsim

type stats = {
  segments_received : int;
  duplicate_segments : int;
  acks_sent : int;
  bytes_delivered : int;
}

type t = {
  sim : Simulator.t;
  cfg : Tcp_config.t;
  conn : int;
  addr : Address.t;
  peer : Address.t;
  expected : int;
  alloc_id : unit -> int;
  transmit : Packet.t -> unit;
  mutable next_byte : int;  (* rcv_nxt *)
  (* Out-of-order byte ranges [start, stop), disjoint, sorted. *)
  mutable buffered : (int * int) list;
  mutable received_count : int;
  mutable duplicate_count : int;
  mutable ack_count : int;
  mutable finish_time : Simtime.t option;
  mutable on_complete : (unit -> unit) option;
  mutable ack_pending : bool;  (* delayed-ack: one unacked segment held *)
  mutable delack_timer : Simulator.event option;
}

let create sim ~config ~conn ~addr ~peer ~expected_bytes ~alloc_id ~transmit =
  if expected_bytes <= 0 then invalid_arg "Tcp_sink.create: nothing expected";
  {
    sim;
    cfg = config;
    conn;
    addr;
    peer;
    expected = expected_bytes;
    alloc_id;
    transmit;
    next_byte = 0;
    buffered = [];
    received_count = 0;
    duplicate_count = 0;
    ack_count = 0;
    finish_time = None;
    on_complete = None;
    ack_pending = false;
    delack_timer = None;
  }

let set_on_complete t f = t.on_complete <- Some f
let rcv_nxt t = t.next_byte
let completed t = match t.finish_time with Some _ -> true | None -> false
let completion_time t = t.finish_time

(* Insert [start, stop) into the sorted disjoint range list, merging
   overlaps. *)
let rec insert_range ranges (start, stop) =
  match ranges with
  | [] -> [ (start, stop) ]
  | (s, e) :: rest ->
    if stop < s then (start, stop) :: ranges
    else if e < start then (s, e) :: insert_range rest (start, stop)
    else insert_range rest (Stdlib.min s start, Stdlib.max e stop)

(* Advance the ack point through any buffered ranges it now touches. *)
let rec drain t =
  match t.buffered with
  | (s, e) :: rest when s <= t.next_byte ->
    t.next_byte <- Stdlib.max t.next_byte e;
    t.buffered <- rest;
    drain t
  | _ -> ()

let cancel_delack t =
  match t.delack_timer with
  | None -> ()
  | Some ev ->
    Simulator.cancel t.sim ev;
    t.delack_timer <- None

(* RFC 2018: report up to three out-of-order blocks so a SACK sender
   can retransmit holes only.  We report the lowest blocks (the ones
   adjacent to the holes the sender must fill first). *)
let sack_blocks t =
  List.filteri (fun i _ -> i < 3) t.buffered

let send_ack t =
  cancel_delack t;
  t.ack_pending <- false;
  let pkt =
    Packet.create ~id:(t.alloc_id ()) ~src:t.addr ~dst:t.peer
      ~kind:
        (Packet.Tcp_ack
           { conn = t.conn; ack = t.next_byte; sack = sack_blocks t })
      ~header_bytes:t.cfg.header_bytes ~created:(Simulator.now t.sim)
  in
  t.ack_count <- t.ack_count + 1;
  t.transmit pkt

let mark_complete t =
  match t.finish_time with
  | Some _ -> ()
  | None ->
    t.finish_time <- Some (Simulator.now t.sim);
    (match t.on_complete with Some f -> f () | None -> ())

let handle_data t ~seq ~length =
  if length <= 0 then invalid_arg "Tcp_sink.handle_data: empty segment";
  let before = t.next_byte in
  let stop = seq + length in
  if stop <= t.next_byte then t.duplicate_count <- t.duplicate_count + 1
  else begin
    t.received_count <- t.received_count + 1;
    if seq <= t.next_byte then begin
      t.next_byte <- Stdlib.max t.next_byte stop;
      drain t
    end
    else t.buffered <- insert_range t.buffered (seq, stop)
  end;
  let advanced = t.next_byte > before in
  if t.next_byte >= t.expected then mark_complete t;
  (* Default: ack every segment, like the paper's NS-1 sink.  With
     delayed acks (RFC 1122): hold at most one in-order segment, ack
     on the second, on the timeout, on completion, or immediately for
     anything out of order or duplicate. *)
  if
    t.cfg.Tcp_config.delayed_ack && advanced
    && (match t.buffered with [] -> true | _ :: _ -> false)
    && t.next_byte < t.expected
  then begin
    if t.ack_pending then send_ack t
    else begin
      t.ack_pending <- true;
      t.delack_timer <-
        Some
          (Simulator.schedule_after t.sim
             ~delay:t.cfg.Tcp_config.delayed_ack_timeout (fun () ->
               t.delack_timer <- None;
               if t.ack_pending then send_ack t))
    end
  end
  else send_ack t

let stats t =
  {
    segments_received = t.received_count;
    duplicate_segments = t.duplicate_count;
    acks_sent = t.ack_count;
    bytes_delivered = Stdlib.min t.next_byte t.expected;
  }
