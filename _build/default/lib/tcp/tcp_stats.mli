(** Per-connection counters (sender side). *)

type t = {
  mutable packets_sent : int;  (** data packets emitted, incl. retransmissions *)
  mutable bytes_sent : int;  (** payload bytes emitted, incl. retransmissions *)
  mutable wire_bytes_sent : int;  (** payload + header bytes emitted *)
  mutable packets_retransmitted : int;
  mutable bytes_retransmitted : int;  (** payload bytes re-sent — Fig. 9/11's
      "data retransmitted" *)
  mutable acks_received : int;
  mutable dupacks_received : int;
  mutable timeouts : int;  (** retransmission-timer expiries *)
  mutable fast_retransmits : int;
  mutable rtt_samples : int;
  mutable ebsns_received : int;
  mutable quenches_received : int;
}

val create : unit -> t
(** All counters zero. *)

val goodput : t -> useful_bytes:int -> float
(** [useful_bytes / bytes_sent]: the paper's goodput metric (1.0 when
    nothing was retransmitted).  Returns 1.0 when nothing was sent. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary. *)
