(** TCP receiver (sink) for bulk transfer.

    Acknowledges every arriving data segment with a cumulative ack, as
    the NS-1 Tahoe sink does — out-of-order arrivals therefore produce
    duplicate acks, which drive the sender's fast-retransmit.
    Out-of-order payload is buffered (up to the advertised window) and
    delivered in order. *)

type t
(** A sink for one connection. *)

type stats = {
  segments_received : int;  (** data segments accepted (any order) *)
  duplicate_segments : int;  (** segments entirely below the ack point *)
  acks_sent : int;
  bytes_delivered : int;  (** in-order payload delivered to the user *)
}

val create :
  Sim_engine.Simulator.t ->
  config:Tcp_config.t ->
  conn:int ->
  addr:Netsim.Address.t ->
  peer:Netsim.Address.t ->
  expected_bytes:int ->
  alloc_id:(unit -> int) ->
  transmit:(Netsim.Packet.t -> unit) ->
  t
(** A sink at [addr] acknowledging to [peer], complete once
    [expected_bytes] of payload have been delivered in order. *)

val handle_data : t -> seq:int -> length:int -> unit
(** Process an arriving data segment. *)

val rcv_nxt : t -> int
(** Next byte expected (the cumulative ack value). *)

val completed : t -> bool
(** [true] once every expected byte has been delivered in order. *)

val completion_time : t -> Sim_engine.Simtime.t option
(** When the last in-order byte arrived, once {!completed}. *)

val set_on_complete : t -> (unit -> unit) -> unit
(** Callback invoked once, at completion. *)

val stats : t -> stats
