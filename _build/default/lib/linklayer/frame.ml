type payload =
  | Whole of Netsim.Packet.t
  | Fragment of {
      packet : Netsim.Packet.t;
      index : int;
      count : int;
      bytes : int;
    }
  | Link_ack of { acked_seq : int }

type t = { seq : int; payload : payload }

let link_ack_bytes = 8

let payload_bytes = function
  | Whole pkt -> Netsim.Packet.size pkt
  | Fragment { bytes; _ } -> bytes
  | Link_ack _ -> link_ack_bytes

let bytes t = payload_bytes t.payload

let packet t =
  match t.payload with
  | Whole pkt | Fragment { packet = pkt; _ } -> Some pkt
  | Link_ack _ -> None

let conn t = Option.map Netsim.Packet.conn (packet t)
let is_ack t = match t.payload with Link_ack _ -> true | _ -> false

let pp ppf t =
  match t.payload with
  | Whole pkt -> Format.fprintf ppf "frame %d [%a]" t.seq Netsim.Packet.pp pkt
  | Fragment { packet; index; count; bytes } ->
    Format.fprintf ppf "frame %d frag %d/%d (%dB) of [%a]" t.seq (index + 1)
      count bytes Netsim.Packet.pp packet
  | Link_ack { acked_seq } -> Format.fprintf ppf "frame %d lack %d" t.seq acked_seq
