(** Retransmission backoff policies for the link-level ARQ.

    The paper's base station "retransmits the lost packet after a
    random retransmission backoff"; CDPD-style link layers draw a
    uniform random delay.  A binary-exponential variant is provided
    for ablations. *)

type policy =
  | Uniform of Sim_engine.Simtime.span
      (** Uniform on [[0, max]] — the paper's model. *)
  | Binary_exponential of {
      base : Sim_engine.Simtime.span;  (** mean of the first attempt *)
      cap : Sim_engine.Simtime.span;  (** upper bound on the window *)
    }
      (** Uniform on [[0, min (base·2{^attempt-1}, cap)]]. *)

val draw : policy -> Sim_engine.Rng.t -> attempt:int -> Sim_engine.Simtime.span
(** Backoff before retransmission number [attempt] (first
    retransmission is attempt 1).  @raise Invalid_argument if
    [attempt < 1]. *)

val mean : policy -> attempt:int -> Sim_engine.Simtime.span
(** Expected backoff at the given attempt (for timeout budgeting and
    tests). *)
