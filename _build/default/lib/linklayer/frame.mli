(** Link-level frames on the wireless hop.

    A frame carries either a whole network-layer packet (when it fits
    in the wireless MTU), one fragment of a packet, or a link-level
    acknowledgement for the stop-and-wait ARQ.  Frames are identified
    per-direction by a link sequence number assigned at send time. *)

type payload =
  | Whole of Netsim.Packet.t  (** an unfragmented packet *)
  | Fragment of {
      packet : Netsim.Packet.t;  (** the packet being fragmented *)
      index : int;  (** 0-based fragment index *)
      count : int;  (** total fragments of this packet *)
      bytes : int;  (** network-layer bytes carried by this fragment *)
    }  (** one MTU-sized piece of a larger packet *)
  | Link_ack of { acked_seq : int }
      (** ARQ acknowledgement of the frame with that link sequence
          number *)

type t = { seq : int;  (** link sequence number *) payload : payload }

val link_ack_bytes : int
(** Network-layer size of a link acknowledgement frame (8 bytes). *)

val bytes : t -> int
(** Network-layer bytes of the frame before air overhead is applied:
    the packet size for [Whole], the fragment share for [Fragment],
    {!link_ack_bytes} for [Link_ack]. *)

val payload_bytes : payload -> int
(** Same, for a payload not yet assigned a sequence number. *)

val conn : t -> int option
(** The TCP connection the frame belongs to, if it carries one. *)

val packet : t -> Netsim.Packet.t option
(** The network packet carried (whole or fragmented), if any. *)

val is_ack : t -> bool
(** [true] for [Link_ack]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering for traces. *)
