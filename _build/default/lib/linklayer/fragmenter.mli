(** Wireless-MTU fragmentation.

    Network-layer packets larger than the wireless MTU are split into
    MTU-sized fragments before transmission over the wireless link
    (paper §3.1: wide-area wireless MTUs are small, e.g. 128 bytes in
    CDPD).  Loss of any fragment loses the whole packet unless the
    link layer recovers it. *)

val fragment_count : mtu:int -> Netsim.Packet.t -> int
(** Number of fragments the packet needs ([1] if it fits). *)

val split : mtu:int -> Netsim.Packet.t -> Frame.payload list
(** The frame payloads for one packet, in index order: a single
    [Whole] when the packet fits in the MTU, otherwise [Fragment]s
    whose byte counts sum to the packet size, all but the last equal
    to [mtu].  @raise Invalid_argument if [mtu <= 0]. *)
