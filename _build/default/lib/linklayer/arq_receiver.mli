(** Receiving side of the wireless hop.

    Dispatches incoming frames: link acknowledgements go to the local
    ARQ sender (if any); data frames are acknowledged back to the
    peer, de-duplicated and — when the peer runs ARQ —
    {e resequenced}: retransmitted frames arrive out of order, so
    delivery upward is held until the link sequence gap closes or a
    hole timeout expires (the peer discards a frame after RTmax
    failures, leaving a permanent hole). *)

type t
(** A frame receiver. *)

type stats = {
  frames_received : int;  (** all frames seen *)
  duplicates : int;  (** data frames already seen once *)
  acks_sent : int;  (** link acknowledgements generated *)
  resequenced : int;  (** frames delivered out of arrival order *)
  holes_flushed : int;  (** sequence gaps abandoned by the hole timeout *)
  stragglers : int;
      (** frames that arrived after their hole was flushed, delivered
          late and out of order rather than dropped *)
}

type resequence = {
  hole_timeout : Sim_engine.Simtime.span;
      (** how long to wait for a missing link sequence number before
          giving up on it; should exceed the peer's worst-case
          per-frame recovery time *)
}

val create :
  Sim_engine.Simulator.t ->
  ?send_ack:(acked_seq:int -> unit) ->
  ?on_link_ack:(acked_seq:int -> unit) ->
  ?resequence:resequence ->
  ?dedup:bool ->
  deliver:(Frame.payload -> unit) ->
  unit ->
  t
(** [send_ack] transmits a link acknowledgement to the peer (present
    iff the peer runs ARQ toward us); [on_link_ack] feeds acks to our
    own ARQ sender (present iff we run ARQ toward the peer);
    [resequence] enables in-order delivery over the peer's dense ARQ
    sequence space; [dedup] (without [resequence]) drops repeated link
    sequence numbers without reordering — for the shared-radio setup
    where one ARQ sequence space spans several receivers; [deliver]
    receives each new data payload. *)

val receive : t -> Frame.t -> unit
(** Entry point wired to the incoming wireless link. *)

val pending : t -> int
(** Frames held back waiting for a sequence gap to close. *)

val stats : t -> stats
