lib/linklayer/sched.mli:
