lib/linklayer/arq.ml: Backoff Frame Hashtbl Rng Sched Sim_engine Simtime Simulator Wireless_link
