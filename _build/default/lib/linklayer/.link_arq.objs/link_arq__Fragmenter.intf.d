lib/linklayer/fragmenter.mli: Frame Netsim
