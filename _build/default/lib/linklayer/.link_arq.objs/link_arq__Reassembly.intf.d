lib/linklayer/reassembly.mli: Frame Netsim Sim_engine
