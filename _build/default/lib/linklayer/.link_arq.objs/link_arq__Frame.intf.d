lib/linklayer/frame.mli: Format Netsim
