lib/linklayer/frame.ml: Format Netsim Option
