lib/linklayer/arq.mli: Backoff Frame Sched Sim_engine Wireless_link
