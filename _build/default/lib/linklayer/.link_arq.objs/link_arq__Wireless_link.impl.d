lib/linklayer/wireless_link.ml: Error_model Float Frame Netsim Queue_drop_tail Sim_engine Simtime Simulator Units
