lib/linklayer/arq_receiver.ml: Frame Hashtbl Sim_engine Simtime Simulator Stdlib
