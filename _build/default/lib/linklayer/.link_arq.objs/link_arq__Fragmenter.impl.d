lib/linklayer/fragmenter.ml: Frame List Netsim Stdlib
