lib/linklayer/backoff.ml: Float Rng Sim_engine Simtime Stdlib
