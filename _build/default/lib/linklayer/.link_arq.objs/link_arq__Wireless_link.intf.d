lib/linklayer/wireless_link.mli: Error_model Frame Netsim Sim_engine
