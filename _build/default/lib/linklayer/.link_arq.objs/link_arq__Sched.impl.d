lib/linklayer/sched.ml: Hashtbl List Queue
