lib/linklayer/backoff.mli: Sim_engine
