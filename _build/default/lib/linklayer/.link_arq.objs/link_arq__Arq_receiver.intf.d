lib/linklayer/arq_receiver.mli: Frame Sim_engine
