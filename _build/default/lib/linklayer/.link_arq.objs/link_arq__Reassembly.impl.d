lib/linklayer/reassembly.ml: Array Frame Hashtbl Netsim Sim_engine Simtime Simulator
