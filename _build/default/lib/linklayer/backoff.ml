open Sim_engine

type policy =
  | Uniform of Simtime.span
  | Binary_exponential of { base : Simtime.span; cap : Simtime.span }

let window policy ~attempt =
  if attempt < 1 then invalid_arg "Backoff: attempt must be >= 1";
  match policy with
  | Uniform max_delay -> max_delay
  | Binary_exponential { base; cap } ->
    let scaled =
      (* Saturating doubling; attempts are small (<= RTmax = 13). *)
      Simtime.span_scale base (Float.of_int (1 lsl Stdlib.min 20 (attempt - 1)))
    in
    Simtime.span_min scaled cap

let draw policy rng ~attempt =
  let w = Simtime.span_to_ns (window policy ~attempt) in
  if w = 0 then Simtime.span_zero else Simtime.span_ns (Rng.int rng (w + 1))

let mean policy ~attempt =
  Simtime.span_scale (window policy ~attempt) 0.5
