let fragment_count ~mtu pkt =
  if mtu <= 0 then invalid_arg "Fragmenter: mtu must be positive";
  let size = Netsim.Packet.size pkt in
  Stdlib.max 1 ((size + mtu - 1) / mtu)

let split ~mtu pkt =
  let count = fragment_count ~mtu pkt in
  if count = 1 then [ Frame.Whole pkt ]
  else
    let size = Netsim.Packet.size pkt in
    List.init count (fun index ->
        let bytes =
          if index = count - 1 then size - ((count - 1) * mtu) else mtu
        in
        Frame.Fragment { packet = pkt; index; count; bytes })
