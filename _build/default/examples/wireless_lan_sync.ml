(* A laptop on a 2 Mbps wireless LAN synchronises a 4 MB dataset from
   a wired server while walking through patchy coverage — the paper's
   §4.2.4 local-area scenario, where the tiny round-trip time makes
   TCP especially timeout-prone during local recovery.

   Prints the throughput across fade intensities and a packet trace of
   the worst case, with and without EBSN.

     dune exec examples/wireless_lan_sync.exe *)

let sync scheme ~mean_bad_sec ~seed =
  let scenario = Core.Scenario.lan ~scheme ~mean_bad_sec ~seed () in
  (scenario, Core.Wiring.run scenario)

let () =
  print_endline "4 MB sync over a 2 Mbps wireless LAN (mean good period 4 s)";
  print_endline "";
  Printf.printf "%-10s %14s %14s %10s\n" "fade (s)" "basic (Mbps)"
    "ebsn (Mbps)" "ceiling";
  List.iter
    (fun bad ->
      let _, basic = sync Core.Scenario.Basic ~mean_bad_sec:bad ~seed:3 in
      let s, ebsn = sync Core.Scenario.Ebsn ~mean_bad_sec:bad ~seed:3 in
      Printf.printf "%-10.1f %14.2f %14.2f %10.2f\n" bad
        (Core.Wiring.throughput_bps basic /. 1e6)
        (Core.Wiring.throughput_bps ebsn /. 1e6)
        (Core.Theory.tput_th_scenario s /. 1e6))
    [ 0.4; 0.8; 1.2; 1.6 ];

  (* Show what the source actually does during the fades: the first
     20 seconds of a deterministic-fade run, with and without EBSN. *)
  let trace scheme =
    let scenario =
      Core.Scenario.lan ~scheme ~mean_bad_sec:1.0
        ~error_mode:Core.Scenario.Deterministic ~file_bytes:(1 lsl 20) ~seed:3
        ()
    in
    let outcome = Core.Wiring.run scenario in
    Core.Timeseq.render
      ~config:{ Core.Timeseq.default_config with Core.Timeseq.modulo = 720 }
      ~until:(Core.Simtime.of_ns 10_000_000_000)
      (Core.Trace.sends outcome.Core.Wiring.trace)
  in
  print_endline "\nsource trace, basic TCP (fades at 4-5s and 9-10s; R = retransmission):";
  print_endline (trace Core.Scenario.Basic);
  print_endline "source trace, TCP with EBSN (no source retransmissions):";
  print_endline (trace Core.Scenario.Ebsn)
