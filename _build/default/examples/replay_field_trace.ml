(* Replaying a "measured" channel trace.

   Real wireless studies often start from a drive-test log: a sequence
   of good/fade intervals recorded in the field.  This example feeds
   such a trace (hard-coded below, but it could come from a file) into
   the simulator, compares basic TCP against EBSN on the *identical*
   loss pattern, and writes an NS-style per-link event trace for
   external tools.

     dune exec examples/replay_field_trace.exe *)

open Core

(* A 60-second "drive test": a clean stretch, a tunnel, flutter near a
   parking structure, then open air.  Seconds in each state. *)
let field_log =
  [
    (Channel_state.Good, 9.0);
    (Channel_state.Bad, 2.2);
    (Channel_state.Good, 6.5);
    (Channel_state.Bad, 0.4);
    (Channel_state.Good, 1.1);
    (Channel_state.Bad, 0.7);
    (Channel_state.Good, 0.9);
    (Channel_state.Bad, 1.8);
    (Channel_state.Good, 14.0);
    (Channel_state.Bad, 5.1);
    (Channel_state.Good, 18.3);
  ]

let () =
  let periods =
    List.map (fun (s, sec) -> (s, Simtime.span_sec sec)) field_log
  in
  let good =
    List.fold_left
      (fun acc (s, d) -> if s = Channel_state.Good then acc +. d else acc)
      0.0 field_log
  in
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 field_log in
  Printf.printf
    "replaying a %.0f s field trace (%.0f%% good) over the CDPD link\n\n"
    total
    (100.0 *. good /. total);

  List.iter
    (fun scheme ->
      let scenario =
        Scenario.wan ~scheme ~error_mode:(Scenario.Replay periods) ()
      in
      let scenario = { scenario with Scenario.collect_nstrace = true } in
      let outcome = Wiring.run scenario in
      let m = Run.outcome_measurement outcome in
      Printf.printf
        "%-15s throughput %.2f kbit/s | goodput %.3f | %d timeouts\n"
        (Scenario.scheme_name scheme)
        (m.Run.throughput_bps /. 1e3)
        m.Run.goodput m.Run.source_timeouts;
      (* Both runs see byte-identical channel behaviour, so the
         difference is purely the recovery scheme. *)
      match outcome.Wiring.nstrace with
      | Some trace ->
        let path =
          Printf.sprintf "/tmp/field_trace_%s.tr" (Scenario.scheme_name scheme)
        in
        let oc = open_out path in
        output_string oc trace;
        close_out oc;
        Printf.printf "                per-link event trace: %s (%d lines)\n"
          path
          (List.length (String.split_on_char '\n' trace) - 1)
      | None -> ())
    [ Scenario.Basic; Scenario.Ebsn ];

  Printf.printf "\nlong-run ceiling for this trace: %.2f kbit/s\n"
    (12_800.0 *. good /. total /. 1e3)
