(* Quickstart: run the paper's wide-area scenario under basic TCP and
   under TCP with EBSN, and print the paper's two metrics.

     dune exec examples/quickstart.exe *)

let () =
  print_endline "wireless-tcp quickstart";
  print_endline "=======================";
  List.iter
    (fun scheme ->
      (* A 100 KB transfer from a fixed host to a mobile host across a
         56 kbps wired link and a bursty 19.2 kbps wireless link
         (mean good period 10 s, mean bad period 4 s). *)
      let scenario = Core.Scenario.wan ~scheme ~mean_bad_sec:4.0 ~seed:42 () in
      let outcome = Core.Wiring.run scenario in
      let m = Core.Run.outcome_measurement outcome in
      Printf.printf
        "%-15s throughput %.2f kbit/s | goodput %.3f | %d source timeouts\n"
        (Core.Scenario.scheme_name scheme)
        (m.Core.Run.throughput_bps /. 1e3)
        m.Core.Run.goodput m.Core.Run.source_timeouts)
    [ Core.Scenario.Basic; Core.Scenario.Local_recovery; Core.Scenario.Ebsn ];
  Printf.printf
    "long-run theoretical maximum: %.2f kbit/s (a single seed's channel \
     can be luckier)\n"
    (Core.Theory.tput_th_scenario (Core.Scenario.wan ~mean_bad_sec:4.0 ())
    /. 1e3)
