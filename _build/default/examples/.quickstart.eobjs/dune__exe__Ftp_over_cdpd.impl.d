examples/ftp_over_cdpd.ml: Core Printf
