examples/quickstart.ml: Core List Printf
