examples/replay_field_trace.mli:
