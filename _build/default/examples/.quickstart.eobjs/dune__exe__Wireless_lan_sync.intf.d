examples/wireless_lan_sync.mli:
