examples/replay_field_trace.ml: Channel_state Core List Printf Run Scenario Simtime String Wiring
