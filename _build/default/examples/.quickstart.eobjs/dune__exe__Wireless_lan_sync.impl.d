examples/wireless_lan_sync.ml: Core List Printf
