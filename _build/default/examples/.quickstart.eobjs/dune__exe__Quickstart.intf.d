examples/quickstart.mli:
