examples/ftp_over_cdpd.mli:
