(* A mobile user fetches a 100 KB file over a CDPD-like wide-area
   wireless link (the paper's motivating workload, §1).

   The example walks through the paper's two proposals in order:

   1. Without touching any protocol, pick a better packet size for the
      wired network using the base station's lookup table (§4.1).
   2. Turn on local recovery and EBSN at the base station (§4.2).

     dune exec examples/ftp_over_cdpd.exe *)

(* Means over several seeds: a single run's channel realisation can
   easily swing +-15%. *)
let fetch ~label scenario =
  let replications = 8 in
  let tput =
    (Core.Sweep.replicate ~replications scenario ~metric:Core.Sweep.throughput)
      .Core.Summary.mean
  in
  let goodput =
    (Core.Sweep.replicate ~replications scenario ~metric:Core.Sweep.goodput)
      .Core.Summary.mean
  in
  Printf.printf "  %-34s %6.2f kbit/s   goodput %.3f\n" label (tput /. 1e3)
    goodput;
  tput

let () =
  let mean_bad_sec = 2.0 in
  Printf.printf
    "ftp of a 100 KB file over CDPD (19.2 kbps raw, 128 B MTU), mean fade \
     %.0f s\n\n"
    mean_bad_sec;

  (* Step 0: the two out-of-the-box configurations the paper names —
     Path-MTU discovery picks the wireless MTU (128 B, tiny packets,
     heavy header overhead); without PMTU the source uses the 576-byte
     default IP datagram size. *)
  print_endline "step 0: plain TCP, stock packet sizes";
  let pmtu =
    fetch ~label:"basic, 128 B (PMTU discovery)"
      (Core.Scenario.wan ~scheme:Core.Scenario.Basic ~packet_size:128
         ~mean_bad_sec ())
  in
  let base =
    fetch ~label:"basic, 576 B (default datagram)"
      (Core.Scenario.wan ~scheme:Core.Scenario.Basic ~packet_size:576
         ~mean_bad_sec ())
  in
  ignore base;

  (* Step 1: ask the base station's advisor table for a better wired
     packet size for this error characteristic. *)
  print_endline "\nstep 1: packet-size selection (no protocol changes, §4.1)";
  let entry, _sweep =
    Core.Packet_size_advisor.evaluate ~replications:5 ~mean_bad_sec ()
  in
  Printf.printf "  advisor: best wired packet size for %.0fs fades = %d B\n"
    mean_bad_sec entry.Core.Packet_size_advisor.best_size;
  let tuned =
    fetch
      ~label:
        (Printf.sprintf "basic, tuned %d B"
           entry.Core.Packet_size_advisor.best_size)
      (Core.Scenario.wan ~scheme:Core.Scenario.Basic
         ~packet_size:entry.Core.Packet_size_advisor.best_size ~mean_bad_sec
         ())
  in

  (* Step 2: deploy local recovery and explicit feedback at the BS. *)
  print_endline "\nstep 2: local recovery + EBSN at the base station (§4.2)";
  let ebsn =
    fetch ~label:"ebsn, 576 B"
      (Core.Scenario.wan ~scheme:Core.Scenario.Ebsn ~packet_size:576
         ~mean_bad_sec ())
  in
  let ebsn_large =
    fetch ~label:"ebsn, 1536 B (fragmentation-proof)"
      (Core.Scenario.wan ~scheme:Core.Scenario.Ebsn ~packet_size:1536
         ~mean_bad_sec ())
  in

  Printf.printf "\nsummary vs the PMTU choice: tuning %+.0f%%, EBSN \
                 %+.0f%%, EBSN+large packets %+.0f%%\n"
    (100.0 *. ((tuned /. pmtu) -. 1.0))
    (100.0 *. ((ebsn /. pmtu) -. 1.0))
    (100.0 *. ((ebsn_large /. pmtu) -. 1.0));
  Printf.printf "theoretical ceiling: %.2f kbit/s\n"
    (Core.Theory.tput_th_scenario (Core.Scenario.wan ~mean_bad_sec ()) /. 1e3)
